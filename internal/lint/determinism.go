package lint

import (
	"go/ast"
	"go/types"

	"corona/internal/lint/analysis"
)

// Determinism forbids nondeterminism sources inside the simulation core.
// The repo's headline contract — a sweep is byte-identical at any worker
// count, across runs, machines, and snapshot/restore (docs/DETERMINISM.md) —
// dies the moment simulated behavior observes wall-clock time, the global
// math/rand stream (shared, lock-ordered, seeded by the runtime), crypto
// randomness, or Go's randomized map iteration order on a path that feeds
// ordered output. Simulation randomness must come from per-component
// sim.Rand generators seeded via core.CellSeed.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock time, global math/rand, crypto/rand, and map-ordered " +
		"output inside the simulation packages (sim, core, noc, fabrics, stats, …)",
	Run: runDeterminism,
}

// forbiddenTimeFuncs observe or depend on wall-clock time. time.Duration
// arithmetic and constants remain fine — only the runtime clock is banned.
var forbiddenTimeFuncs = map[string]string{
	"Now":       "wall-clock time",
	"Since":     "wall-clock time",
	"Until":     "wall-clock time",
	"Sleep":     "wall-clock scheduling",
	"After":     "wall-clock scheduling",
	"Tick":      "wall-clock scheduling",
	"NewTicker": "wall-clock scheduling",
	"NewTimer":  "wall-clock scheduling",
	"AfterFunc": "wall-clock scheduling",
}

// seededRandConstructors are the math/rand package-level functions that do
// NOT touch the global source: they build explicitly seeded generators,
// which is exactly what deterministic code should do (better yet, sim.Rand).
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *analysis.Pass) error {
	if !inSimScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkDeterminismUse(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, file, n)
			}
			return true
		})
	}
	return nil
}

// checkDeterminismUse flags references to the banned time and rand symbols.
// Matching the use (not just calls) also catches taking time.Now as a value.
func checkDeterminismUse(pass *analysis.Pass, sel *ast.SelectorExpr) {
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		if why, ok := forbiddenTimeFuncs[obj.Name()]; ok {
			if _, isFunc := obj.(*types.Func); isFunc {
				pass.Reportf(sel.Pos(),
					"time.%s is %s: simulation code must be reproducible, use kernel time (sim.Time) instead",
					obj.Name(), why)
			}
		}
	case "math/rand", "math/rand/v2":
		fn, ok := obj.(*types.Func)
		if !ok || seededRandConstructors[fn.Name()] {
			return
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			pass.Reportf(sel.Pos(),
				"%s.%s draws from the global rand source: use a seeded sim.Rand (core.CellSeed) so streams are reproducible",
				obj.Pkg().Path(), obj.Name())
		}
	case "crypto/rand":
		pass.Reportf(sel.Pos(),
			"crypto/rand is nondeterministic by design and has no place in simulation code")
	}
}

// checkMapRange flags `for … range m` over a map when the loop body feeds an
// order-sensitive sink: an append whose result is not sorted immediately
// after the loop, a direct write/print, or a channel send. Go randomizes map
// iteration order per run, so any such loop breaks byte-identical output.
// Order-insensitive bodies — counting, summing, building another map — pass.
func checkMapRange(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	var sinkPos ast.Node
	var sink string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sinkPos != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			sinkPos, sink = n, "sends on a channel"
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					if !sortedAfter(pass, file, rng) {
						sinkPos, sink = n, "appends to a slice that is not sorted immediately after the loop"
					}
					return false
				}
			}
			if isOrderedWriteCall(pass, n) {
				sinkPos, sink = n, "writes output"
			}
		}
		return true
	})
	if sinkPos != nil {
		pass.Reportf(rng.Pos(),
			"map iteration order is randomized, and this loop %s: iterate sorted keys (or sort the result before it is observed)", sink)
	}
}

// sortedAfter reports whether one of the statements following rng in its
// enclosing block calls into package sort or slices — the canonical
// "collect keys, then sort" determinization idiom.
func sortedAfter(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt) bool {
	var after []ast.Stmt
	ast.Inspect(file, func(n ast.Node) bool {
		if after != nil {
			return false
		}
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			if stmt == ast.Stmt(rng) {
				after = block.List[i+1:]
				if after == nil {
					after = []ast.Stmt{}
				}
				return false
			}
		}
		return true
	})
	for _, stmt := range after {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeOf(pass.TypesInfo, call); fn != nil && fn.Pkg() != nil {
				switch fn.Pkg().Path() {
				case "sort", "slices":
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isOrderedWriteCall reports whether call emits bytes somewhere ordered:
// fmt printing, io writes, or encoder calls.
func isOrderedWriteCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := calleeOf(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true
		}
	}
	return false
}
