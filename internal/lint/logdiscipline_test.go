package lint_test

import (
	"testing"

	"corona/internal/lint"
	"corona/internal/lint/linttest"
)

func TestLogDiscipline(t *testing.T) {
	linttest.Run(t, lint.LogDiscipline,
		"ld/internal/server", // positive, allow, and test-file cases
		"ld/internal/api",    // negative: outside the daemon packages
	)
}
