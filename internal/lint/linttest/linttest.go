// Package linttest is an analysistest-style harness for the corona-vet
// analyzer suite. A test names fixture packages under
// internal/lint/testdata/src/<pkgpath>/; the harness parses and typechecks
// each fixture (resolving every import from the same testdata tree, so the
// fixtures shadow the standard library with small stubs and stay hermetic),
// runs one analyzer through the same RunSuite path the vettool uses —
// allow-directive filtering and hygiene findings included — and diffs the
// resulting diagnostics against `// want "regexp"` comments in the fixture
// source.
//
// Expectations follow the x/tools analysistest convention: a comment
//
//	time.Now() // want `time\.Now is wall-clock`
//
// asserts exactly one diagnostic on that line whose message matches the
// regular expression (several quoted or backquoted patterns assert several
// diagnostics). A line without a want comment asserts silence; both missed
// and unexpected diagnostics fail the test.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"corona/internal/lint"
	"corona/internal/lint/analysis"
)

// srcRoot is the fixture tree, relative to the directory the lint tests run
// in (internal/lint).
const srcRoot = "testdata/src"

// Run loads each fixture package, runs the analyzer over it, and reports any
// divergence from the package's want comments as test errors.
func Run(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, pkgPath := range pkgPaths {
		t.Run(pkgPath, func(t *testing.T) {
			t.Helper()
			runOne(t, a, pkgPath)
		})
	}
}

func runOne(t *testing.T, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	ld := &loader{fset: token.NewFileSet(), loaded: make(map[string]*fixturePkg)}
	target, err := ld.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}

	// Deprecation facts come from the whole loaded fixture closure — the
	// harness equivalent of the fact files go vet threads between units.
	deprecated := make(map[string]bool)
	for _, p := range ld.loaded {
		analysis.CollectDeprecated(analysis.NormalizePkgPath(p.pkg.Path()), p.files, deprecated)
	}

	diags, err := analysis.RunSuite([]*analysis.Analyzer{a}, lint.Names(),
		ld.fset, target.files, target.pkg, target.info, deprecated, fixtureRepoReader(pkgPath))
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
	}

	wants := parseWants(t, ld.fset, target.files)
	checkDiagnostics(t, ld.fset, diags, wants)
}

// fixtureRepoReader anchors Pass.ReadRepoFile at the fixture's module root,
// testdata/src/<first path segment>/ — fixture trees carry their own
// docs/OPERATIONS.md for the faultpoint cross-check.
func fixtureRepoReader(pkgPath string) func(string) ([]byte, error) {
	first := pkgPath
	if i := strings.IndexByte(first, '/'); i >= 0 {
		first = first[:i]
	}
	return func(rel string) ([]byte, error) {
		return os.ReadFile(filepath.Join(srcRoot, first, filepath.FromSlash(rel)))
	}
}

// fixturePkg is one typechecked fixture package.
type fixturePkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader typechecks fixture packages, resolving imports recursively from the
// testdata tree. It doubles as the types.Importer for those packages.
type loader struct {
	fset    *token.FileSet
	loaded  map[string]*fixturePkg
	loading []string // import stack, for cycle reporting
}

func (ld *loader) Import(path string) (*types.Package, error) {
	p, err := ld.load(path)
	if err != nil {
		return nil, err
	}
	return p.pkg, nil
}

func (ld *loader) load(pkgPath string) (*fixturePkg, error) {
	if p, ok := ld.loaded[pkgPath]; ok {
		return p, nil
	}
	for _, active := range ld.loading {
		if active == pkgPath {
			return nil, fmt.Errorf("import cycle through %s", pkgPath)
		}
	}
	ld.loading = append(ld.loading, pkgPath)
	defer func() { ld.loading = ld.loading[:len(ld.loading)-1] }()

	dir := filepath.Join(srcRoot, filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %s: %w (imports must resolve inside %s)", pkgPath, err, srcRoot)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // deterministic Files order, like the go tool's
	if len(names) == 0 {
		return nil, fmt.Errorf("fixture package %s has no Go files", pkgPath)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tc := &types.Config{Importer: ld}
	pkg, err := tc.Check(pkgPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking fixture %s: %w", pkgPath, err)
	}
	p := &fixturePkg{pkg: pkg, files: files, info: info}
	ld.loaded[pkgPath] = p
	return p, nil
}

// A want is one expected diagnostic: a compiled message pattern at a
// file:line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	pattern string
	matched bool
}

// wantRE extracts the expectation list from a comment: `// want "p1" "p2"`
// or backquoted patterns.
var (
	wantMarkerRE  = regexp.MustCompile(`//\s*want\s+(.*)$`)
	wantPatternRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")
)

func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				m := wantMarkerRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Pos())
				specs := wantPatternRE.FindAllStringSubmatch(m[1], -1)
				if len(specs) == 0 {
					t.Errorf("%s: want comment carries no quoted pattern", posn)
					continue
				}
				for _, spec := range specs {
					pattern := spec[1]
					if spec[2] != "" || pattern == "" {
						pattern = spec[2]
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", posn, pattern, err)
						continue
					}
					wants = append(wants, &want{file: posn.Filename, line: posn.Line, re: re, pattern: pattern})
				}
			}
		}
	}
	return wants
}

func checkDiagnostics(t *testing.T, fset *token.FileSet, diags []analysis.SuiteDiagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		if !claimWant(wants, posn, d.Message) {
			t.Errorf("%s: unexpected diagnostic [%s]: %s", posn, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.pattern)
		}
	}
}

// claimWant marks the first unmatched want on the diagnostic's line whose
// pattern matches the message.
func claimWant(wants []*want, posn token.Position, message string) bool {
	for _, w := range wants {
		if !w.matched && w.file == posn.Filename && w.line == posn.Line && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}
