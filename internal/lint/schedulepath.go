package lint

import (
	"go/ast"

	"corona/internal/lint/analysis"
)

// SchedulePath forbids the closure-compatibility scheduling path —
// (*sim.Kernel).Schedule(delay, func()) and At(t, func()) — in internal
// production code. PR 2's zero-allocation kernel exists because every
// closure scheduled on a hot path escapes to the heap; the typed
// ScheduleEvent/AtEvent(handler, data) path is the reason the sweep runs at
// 48.8M events/s. Tests keep the ergonomic closure form; production code in
// internal/ must use typed events or carry an explicit allow.
var SchedulePath = &analysis.Analyzer{
	Name: "schedulepath",
	Doc: "forbid the closure-compat (*sim.Kernel).Schedule/At path in internal " +
		"packages; the typed ScheduleEvent/AtEvent path is allocation-free",
	Run: runSchedulePath,
}

func runSchedulePath(pass *analysis.Pass) error {
	path := normalizePkgPath(pass.Pkg.Path())
	// The kernel's own package defines, documents, and stress-tests the
	// compat path; everywhere else under internal/ it is fenced.
	if !hasAnyInternalSegment(path) || hasInternalSegment(path, "sim") {
		return nil
	}
	isSimPkg := func(p string) bool { return hasInternalSegment(p, "sim") }
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pass.TypesInfo, call)
			if fn == nil || (fn.Name() != "Schedule" && fn.Name() != "At") {
				return true
			}
			if !methodOn(fn, "Kernel", isSimPkg) {
				return true
			}
			if pass.InTestFile(call.Pos()) {
				return true
			}
			typed := "ScheduleEvent"
			if fn.Name() == "At" {
				typed = "AtEvent"
			}
			pass.Reportf(call.Pos(),
				"closure-compat Kernel.%s allocates per event: use the typed %s(handler, data) path (docs/PERFORMANCE.md)",
				fn.Name(), typed)
			return true
		})
	}
	return nil
}

// hasAnyInternalSegment reports whether the package path contains an
// "internal" path segment at all.
func hasAnyInternalSegment(pkgPath string) bool {
	for _, seg := range splitPath(pkgPath) {
		if seg == "internal" {
			return true
		}
	}
	return false
}
