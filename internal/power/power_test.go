package power

import (
	"math"
	"testing"
)

func TestMeshDynamicPower(t *testing.T) {
	// 1e9 hop-transactions over 1 second of simulated time (5e9 cycles):
	// 1e9 * 196 pJ / 1 s = 0.196 W.
	got := MeshDynamicW(1e9, 5e9)
	if math.Abs(got-0.196) > 1e-9 {
		t.Errorf("MeshDynamicW = %v, want 0.196", got)
	}
	if MeshDynamicW(100, 0) != 0 {
		t.Error("zero elapsed should give 0")
	}
}

func TestPaperECMHeadline(t *testing.T) {
	// The paper: a 10 TB/s electrical memory interconnect at 2 mW/Gb/s costs
	// "over 160 W". 10 TB/s for 1 s = 1e13 bytes.
	got := ECMInterconnectW(1e13, 5e9)
	if got < 159 || got > 161 {
		t.Errorf("10 TB/s ECM power = %v W, want ~160 (paper Section 3.3)", got)
	}
}

func TestPaperOCMHeadline(t *testing.T) {
	// "a total memory system power of approximately 6.4 W" at 10.24 TB/s.
	got := OCMInterconnectW(uint64(10.24e12), 5e9)
	if got < 6.3 || got > 6.5 {
		t.Errorf("10.24 TB/s OCM power = %v W, want ~6.4 (paper Section 3.3)", got)
	}
}

func TestConstants(t *testing.T) {
	if XBarContinuousW != 26 {
		t.Error("crossbar power must be the paper's 26 W")
	}
	if PhotonicSubsystemW != 39 {
		t.Error("photonic subsystem power must be the paper's 39 W")
	}
	if ECMmWPerGbps/OCMmWPerGbps < 25 {
		t.Error("optical signalling should be >25x more efficient")
	}
}

func TestMemoryPowerScalesLinearly(t *testing.T) {
	a := OCMInterconnectW(1e12, 5e9)
	b := OCMInterconnectW(2e12, 5e9)
	if math.Abs(b-2*a) > 1e-12 {
		t.Error("power should scale linearly with traffic")
	}
	if MemoryInterconnectW(1, 0, 1) != 0 {
		t.Error("zero elapsed should give 0")
	}
}

func TestMeshPowerCanExceedCrossbar(t *testing.T) {
	// Figure 11's point: under heavy traffic the mesh's dynamic power blows
	// past the crossbar's constant 26 W. A saturated HMesh moves ~1.28 TB/s
	// of memory traffic; each 88 B transaction is two messages (request +
	// response) averaging ~5.3 hops each, so ~1.45e10 tx/s x 10.7 hops x
	// 196 pJ ≈ 31 W, and higher still for the multi-TB/s workloads.
	hopsPerSec := 1.28e12 / 88 * 10.7
	got := MeshDynamicW(uint64(hopsPerSec), 5e9)
	if got < XBarContinuousW {
		t.Errorf("saturated mesh power %v W should exceed the crossbar's %v W", got, XBarContinuousW)
	}
}
