// Package power implements the paper's interconnect power models
// (Sections 3.2-3.3, 4, Figure 11):
//
//   - The optical crossbar dissipates a continuous 26 W — laser, ring
//     trimming, and the analog control layer are largely load-independent.
//   - The electrical meshes dissipate 196 pJ per transaction per hop
//     (low-swing busses, router overhead included, leakage ignored — the
//     paper's deliberately aggressive assumption in the mesh's favour).
//   - Off-stack memory interconnect: 0.078 mW/Gb/s for OCM, 2 mW/Gb/s for
//     electrical signalling (the 160 W that makes a 10 TB/s ECM infeasible).
//   - The full photonic subsystem (crossbar + memory + broadcast +
//     arbitration + clock) is budgeted at 39 W.
package power

import "corona/internal/sim"

// Power model constants from the paper.
const (
	// XBarContinuousW is the crossbar's fixed power draw in watts.
	XBarContinuousW = 26.0
	// SWMRContinuousW is the single-writer multiple-reader crossbar's fixed
	// draw: the MWSR baseline plus trimming/tuning power for the additional
	// receive rings (every cluster filters every channel's wavelengths,
	// where the MWSR design detects only its own home channel).
	SWMRContinuousW = 32.0
	// PhotonicSubsystemW is the total photonic interconnect power budget.
	PhotonicSubsystemW = 39.0
	// MeshHopEnergyPJ is the electrical mesh's energy per transaction per hop.
	MeshHopEnergyPJ = 196.0
	// OCMmWPerGbps and ECMmWPerGbps are the off-stack memory interconnect
	// power coefficients.
	OCMmWPerGbps = 0.078
	ECMmWPerGbps = 2.0
)

// MeshDynamicW returns the electrical mesh's dynamic power for a run in
// which messages accumulated hopTraversals link traversals over elapsed
// simulated time.
func MeshDynamicW(hopTraversals uint64, elapsed sim.Time) float64 {
	sec := elapsed.Seconds()
	if sec == 0 {
		return 0
	}
	return float64(hopTraversals) * MeshHopEnergyPJ * 1e-12 / sec
}

// MemoryInterconnectW returns the off-stack memory interconnect power for
// bytesMoved over elapsed time at the given coefficient.
func MemoryInterconnectW(bytesMoved uint64, elapsed sim.Time, mWPerGbps float64) float64 {
	sec := elapsed.Seconds()
	if sec == 0 {
		return 0
	}
	gbps := float64(bytesMoved) * 8 / sec / 1e9
	return gbps * mWPerGbps / 1000
}

// OCMInterconnectW is MemoryInterconnectW with the optical coefficient.
func OCMInterconnectW(bytesMoved uint64, elapsed sim.Time) float64 {
	return MemoryInterconnectW(bytesMoved, elapsed, OCMmWPerGbps)
}

// ECMInterconnectW is MemoryInterconnectW with the electrical coefficient.
func ECMInterconnectW(bytesMoved uint64, elapsed sim.Time) float64 {
	return MemoryInterconnectW(bytesMoved, elapsed, ECMmWPerGbps)
}
