# corona-serve container image: one image serves both fleet roles — a
# worker by default, a coordinator when CORONA_MODE=coordinator (see
# docker-compose.yml for a 2-worker fleet). The build stage compiles
# static binaries (CGO off, no runtime deps) so the runtime stage is a
# bare alpine with a non-root user.
FROM golang:1.24-alpine AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags='-s -w' -o /out/corona-serve ./cmd/corona-serve \
 && CGO_ENABLED=0 go build -trimpath -ldflags='-s -w' -o /out/corona-sweep ./cmd/corona-sweep \
 && CGO_ENABLED=0 go build -trimpath -ldflags='-s -w' -o /out/corona-bench ./cmd/corona-bench

FROM alpine:3.20
RUN adduser -D -u 10001 corona \
 && mkdir -p /data && chown corona /data
COPY --from=build /out/corona-serve /out/corona-sweep /out/corona-bench /usr/local/bin/
USER corona
# Flags read CORONA_* env defaults (flag wins); containers bind all
# interfaces so the fleet and the host can reach them.
ENV CORONA_ADDR=0.0.0.0:8451
EXPOSE 8451
VOLUME /data
ENTRYPOINT ["corona-serve"]
