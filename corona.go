// Package corona is a full reproduction, in Go, of the system described in
// "Corona: System Implications of Emerging Nanophotonic Technology"
// (Vantrease et al., ISCA 2008): a 256-core, 64-cluster NUMA architecture
// interconnected by an optically arbitrated DWDM photonic crossbar
// (20.48 TB/s), an optical broadcast bus, and optically connected memory
// (10.24 TB/s), evaluated against electrical 2D-mesh / electrically
// connected memory baselines.
//
// The package is a façade over the simulation library in internal/:
//
//   - Client is the execution entry point: every call takes a
//     context.Context and returns (Result, error) — invalid input is a
//     *ConfigError, a stopped run a *CanceledError — with detailed
//     finite-buffer models of the crossbars, meshes, token arbitration,
//     hubs, MSHRs, and memory controllers underneath. Client.Submit runs a
//     sweep as an asynchronous Job whose cells stream from Job.Results as
//     shards finish; docs/API.md documents the model, the migration from
//     the legacy blocking calls, and the corona-serve HTTP daemon built on
//     it (cmd/corona-serve).
//   - NewSweep prepares the paper's full 5-configuration x 15-workload
//     matrix and renders Figures 8-11 as tables. Sweep.Run fans the
//     independent cells out over a bounded worker pool (Workers option,
//     GOMAXPROCS by default) with derived per-workload seeds, and can
//     persist finished cells in an on-disk cache (CacheDir option).
//   - NewMatrixSweep generalizes the same engine to any configurations x
//     workloads matrix; CustomConfig describes a machine over any registered
//     fabric, LoadScenario reads a whole matrix from JSON, and RegisterFabric
//     plugs an entirely new interconnect model into all of the above — see
//     docs/ARCHITECTURE.md for the registry design and a walkthrough.
//   - Table1/Table2/Table3/Table4 reproduce the paper's analytic tables.
//   - ReplayTrace replays an annotated L2-miss trace (package-format traces
//     are produced by cmd/corona-tracegen or the cluster trace engine).
//
// All simulated time is in 5 GHz clock cycles; results report nanoseconds
// and TB/s. Runs are deterministic for a given seed, and sweeps are
// bit-identical for every worker count — the seed-derivation scheme and the
// exact guarantee are documented in docs/DETERMINISM.md.
package corona

import (
	"context"

	"corona/internal/config"
	"corona/internal/core"
	"corona/internal/noc"
	"corona/internal/photonic"
	"corona/internal/splash"
	"corona/internal/stats"
	"corona/internal/trace"
	"corona/internal/traffic"
)

// SystemConfig declaratively describes one simulated machine: a registered
// fabric name plus parameters, a memory interconnect, and cluster/MSHR/hub
// sizing. The paper's five machines are presets (Configurations); arbitrary
// machines come from CustomConfig or a JSON scenario.
type SystemConfig = config.System

// MemoryKind selects the off-stack memory interconnect of a SystemConfig.
type MemoryKind = config.MemoryKind

// Memory interconnect options: optically connected memory (10.24 TB/s
// aggregate) and the electrical baseline (0.96 TB/s).
const (
	OCM = config.OCM
	ECM = config.ECM
)

// Fabric describes a pluggable interconnect: a builder plus analytic
// metadata (bisection bandwidth, power model, channel utilization).
type Fabric = noc.Fabric

// FabricParams is the sizing input a fabric builder receives.
type FabricParams = noc.FabricParams

// Network is the interface every interconnect model implements.
type Network = noc.Network

// RegisterFabric adds a custom interconnect to the fabric registry, making
// it buildable by name from CustomConfig, JSON scenarios, and sweeps. Call
// it from an init function or before building systems; it panics on
// duplicate or incomplete registrations. docs/ARCHITECTURE.md walks through
// a complete example.
func RegisterFabric(f Fabric) { noc.Register(f) }

// Fabrics returns the registered fabric names, sorted ("hmesh", "lmesh",
// "swmr", "xbar", plus anything registered at runtime).
func Fabrics() []string { return noc.Names() }

// CustomConfig describes a machine over any registered fabric with the
// paper's structural defaults (64 clusters, 64 MSHRs, 4-cycle hub); adjust
// the returned struct for anything else. An empty label derives
// "<Fabric>/<Mem>". Params may be nil for the fabric's published defaults.
func CustomConfig(label, fabric string, mem MemoryKind, params map[string]int) SystemConfig {
	return config.Custom(label, fabric, mem, params)
}

// ParseConfigName resolves a preset label such as "XBar/OCM" or "SWMR/ECM",
// rejecting unknown names with the valid vocabulary in the error.
func ParseConfigName(name string) (SystemConfig, error) { return config.ParseName(name) }

// Workload describes an offered traffic pattern (see internal/traffic).
type Workload = traffic.Spec

// Result is one simulation outcome: runtime, achieved bandwidth, latency,
// and power — one bar of each of Figures 8-11.
type Result = core.Result

// Sweep is the full experiment matrix behind the paper's figures.
type Sweep = core.Sweep

// Table is a rendered result table.
type Table = stats.Table

// TraceRecord is one annotated L2 miss.
type TraceRecord = trace.Record

// Corona returns the flagship XBar/OCM configuration.
func Corona() SystemConfig { return config.Corona() }

// Configurations returns the five simulated configurations in the paper's
// order: LMesh/ECM (baseline), HMesh/ECM, LMesh/OCM, HMesh/OCM, XBar/OCM.
func Configurations() []SystemConfig { return config.Combos() }

// SyntheticWorkloads returns Table 3's four synthetic patterns.
func SyntheticWorkloads() []Workload { return traffic.Synthetic() }

// SplashWorkloads returns the eleven SPLASH-2 application models.
func SplashWorkloads() []Workload { return splash.Specs() }

// AllWorkloads returns all fifteen workloads in figure order.
func AllWorkloads() []Workload { return core.AllWorkloads() }

// Client is the context-aware execution entry point: one-shot runs, trace
// replays, config comparisons, and streaming sweep Jobs, all returning
// typed errors instead of panicking. A Client is immutable and safe for
// concurrent use — build one per process (or per server) with NewClient.
type Client = core.Client

// ClientOption configures a NewClient call.
type ClientOption = core.ClientOption

// Job is a submitted, asynchronously running sweep: consume cells from
// Job.Results as shards finish, or block on Job.Wait for the barrier.
type Job = core.Job

// CellResult is one completed sweep cell as streamed from Job.Results.
type CellResult = core.CellResult

// ConfigError marks invalid configuration or scenario input; test with
// errors.As. Servers map it to a 4xx, CLIs to a usage error.
type ConfigError = core.ConfigError

// CanceledError reports a run stopped by context cancellation, with its
// progress at the stop; it unwraps to the context's error, so
// errors.Is(err, context.Canceled) holds.
type CanceledError = core.CanceledError

// NewClient returns a Client with the given execution defaults.
func NewClient(opts ...ClientOption) *Client { return core.NewClient(opts...) }

// WithWorkers sets a client's default worker pool size (0 = GOMAXPROCS,
// 1 = sequential).
func WithWorkers(n int) ClientOption { return core.WithWorkers(n) }

// WithCacheDir sets a client's on-disk sweep result cache directory.
func WithCacheDir(dir string) ClientOption { return core.WithCacheDir(dir) }

// RunWorkload simulates `requests` L2 misses of spec on cfg. Deterministic
// per seed.
//
// Deprecated: RunWorkload blocks, cannot be canceled, and panics on invalid
// configurations. Use (*Client).Run, which takes a context and returns
// typed errors; see docs/API.md for the migration table. This wrapper is
// kept so existing callers keep compiling and keep their exact behavior.
func RunWorkload(cfg SystemConfig, spec Workload, requests int, seed uint64) Result {
	res, err := core.Run(context.Background(), cfg, spec, requests, seed)
	if err != nil {
		panic(err)
	}
	return res
}

// ReplayTrace replays recorded misses on cfg; threadsPerCluster maps trace
// thread ids onto clusters (16 for a full 1024-thread Corona).
//
// Deprecated: use (*Client).Replay, which takes a context and returns typed
// errors instead of panicking on invalid traces (docs/API.md).
func ReplayTrace(cfg SystemConfig, recs []TraceRecord, threadsPerCluster int) Result {
	res, err := core.NewClient().Replay(context.Background(), cfg, recs, threadsPerCluster)
	if err != nil {
		panic(err)
	}
	return res
}

// NewSweep prepares the 5x15 experiment matrix at `requests` misses per
// cell. Run it with Sweep.Run(ctx, ...) — optionally with Workers,
// CacheDir, and OnProgress — or submit it as a streaming Job with
// (*Client).Submit, then Figure8..Figure11 for the tables.
func NewSweep(requests int, seed uint64) *Sweep { return core.NewSweep(requests, seed) }

// NewMatrixSweep prepares an arbitrary configs x workloads matrix on the
// same engine, with the same any-worker-count determinism guarantee and
// cache. Order configs baseline-first: the speedup-1 column is "LMesh/ECM"
// when present, otherwise the first config.
func NewMatrixSweep(configs []SystemConfig, workloads []Workload, requests int, seed uint64) *Sweep {
	return core.NewMatrixSweep(configs, workloads, requests, seed)
}

// Scenario is a fully resolved experiment description loaded from JSON.
type Scenario = core.Scenario

// LoadScenario reads a JSON scenario file — machines (presets or declarative
// fabric descriptions), workloads, requests, seed — validating every fabric
// name, parameter key, and workload against the registry and Table 3.
// Scenario.Sweep() puts it on the engine.
func LoadScenario(path string) (*Scenario, error) { return core.LoadScenario(path) }

// SweepOption configures a Sweep.Run invocation.
type SweepOption = core.Option

// SweepProgress is the per-cell completion event delivered to OnProgress.
type SweepProgress = core.Progress

// Workers bounds the sweep worker pool: 0 (the default) means GOMAXPROCS,
// 1 forces the sequential debugging path. Results are identical either way
// (docs/DETERMINISM.md).
func Workers(n int) SweepOption { return core.Workers(n) }

// CacheDir persists finished sweep cells under dir, keyed by
// (config, workload, requests, seed), so repeated sweeps re-simulate only
// invalidated cells.
func CacheDir(dir string) SweepOption { return core.CacheDir(dir) }

// OnProgress registers a serialized per-cell completion callback.
func OnProgress(fn func(SweepProgress)) SweepOption { return core.OnProgress(fn) }

// Warmup toggles warmup forking (on by default): cells of one figure row
// that share a structural group replay the fabric-independent warmup prefix
// once and fork the remaining cells from a snapshot taken at the barrier.
// Results are byte-identical either way (docs/DETERMINISM.md); Warmup(false)
// forces the from-scratch reference path.
func Warmup(on bool) SweepOption { return core.Warmup(on) }

// CompareConfigs runs spec on several machines concurrently under identical
// traffic (the seed is used as given, where a sweep derives a per-workload
// seed from its base seed — either way, every machine in a row faces the
// same offered stream) and returns results in argument order. With no
// explicit configs it compares the five paper machines in Configurations()
// order: one workload's row of Figures 8-10. Pass any mix of presets and
// custom configs to widen the row.
//
// Deprecated: use (*Client).Compare, which takes a context and returns
// typed errors instead of panicking on invalid configurations
// (docs/API.md).
func CompareConfigs(spec Workload, requests int, seed uint64, configs ...SystemConfig) []Result {
	res, err := core.NewClient().Compare(context.Background(), spec, requests, seed, configs...)
	if err != nil {
		panic(err)
	}
	return res
}

// Table1 returns the paper's resource configuration table.
func Table1() *Table { return config.Table1() }

// Table2 returns the optical resource inventory (waveguide and ring counts).
func Table2() *Table { return photonic.InventoryTable(photonic.DefaultGeometry()) }

// Table3 returns the benchmark setup table.
func Table3() *Table { return config.Table3() }

// Table4 returns the OCM-vs-ECM memory interconnect comparison.
func Table4() *Table { return config.Table4() }

// CrossbarBudget returns the worst-case optical power budget of a crossbar
// channel at the given per-wavelength launch power (dBm).
func CrossbarBudget(launchDBm float64) *photonic.LinkBudget {
	return photonic.CrossbarWorstCaseBudget(launchDBm)
}

// OCMChainBudget returns the optical budget of an OCM fiber loop through n
// daisy-chained memory modules.
func OCMChainBudget(launchDBm float64, n int) *photonic.LinkBudget {
	return photonic.OCMBudget(launchDBm, n)
}
